// Command pctwm-bench prints the full strategy × benchmark hit-rate
// matrix with Wilson confidence intervals — the quick overview of how the
// algorithms compare on the paper's suite.
//
// Usage:
//
//	pctwm-bench [-runs N] [-s SEED] [-parallel] [-d D] [-y H]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"pctwm/internal/benchprog"
	"pctwm/internal/engine"
	"pctwm/internal/harness"
)

func main() {
	var (
		runs     = flag.Int("runs", 500, "rounds per strategy per benchmark")
		seed     = flag.Int64("s", 1, "base random seed")
		parallel = flag.Bool("parallel", false, "spread the rounds over all CPUs")
		depth    = flag.Int("d", -1, "bug depth override (-1 = each benchmark's design depth)")
		history  = flag.Int("y", 1, "history depth for PCTWM")
	)
	flag.Parse()

	type column struct {
		name    string
		factory func(b *benchprog.Benchmark) harness.StrategyFactory
	}
	dFor := func(b *benchprog.Benchmark) int {
		if *depth >= 0 {
			return *depth
		}
		return b.Depth
	}
	cols := []column{
		{"c11tester", func(*benchprog.Benchmark) harness.StrategyFactory { return harness.C11Tester() }},
		{"pos", func(*benchprog.Benchmark) harness.StrategyFactory { return harness.POSFactory() }},
		{"pct", func(b *benchprog.Benchmark) harness.StrategyFactory {
			d := dFor(b)
			if d < 1 {
				d = 1
			}
			return harness.PCTFactory(d)
		}},
		{"pctwm", func(b *benchprog.Benchmark) harness.StrategyFactory {
			return harness.PCTWMFactory(dFor(b), *history)
		}},
	}

	start := time.Now()
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	header := "Benchmark\td"
	for _, c := range cols {
		header += "\t" + c.name
	}
	fmt.Fprintln(tw, header)
	for _, b := range benchprog.All() {
		prog := b.Program(0)
		opts := b.Options()
		est := harness.EstimateParams(prog, 20, *seed^0x5eed, opts)
		row := fmt.Sprintf("%s\t%d", b.Name, dFor(b))
		for i, c := range cols {
			factory := c.factory(b)
			newStrategy := func() engine.Strategy { return factory(est) }
			var res harness.TrialResult
			if *parallel {
				res = harness.RunTrialsParallel(prog, b.Detect, newStrategy, *runs, *seed+int64(10*i), opts, 0)
			} else {
				res = harness.RunTrials(prog, b.Detect, newStrategy, *runs, *seed+int64(10*i), opts)
			}
			lo, hi := res.CI95()
			row += fmt.Sprintf("\t%.1f [%.0f,%.0f]", res.Rate(), lo, hi)
		}
		fmt.Fprintln(tw, row)
	}
	tw.Flush()
	fmt.Printf("(%d rounds per cell, %v total)\n", *runs, time.Since(start).Round(time.Millisecond))
}
