module pctwm

go 1.22
