module pctwm

go 1.23
