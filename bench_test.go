package pctwm

import (
	"io"
	"math/rand"
	"testing"

	"pctwm/internal/benchprog"
	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/enumerate"
	"pctwm/internal/harness"
	"pctwm/internal/litmus"
	"pctwm/internal/memmodel"
	"pctwm/internal/report"
)

// benchCfg is a scaled-down experiment configuration so one benchmark
// iteration regenerates a full (small) table or figure. Run the
// pctwm-experiments command for paper-sized runs.
var benchCfg = report.Config{Runs: 40, Fig6Runs: 30, PerfRuns: 2, MaxH: 2, Seed: 1}

// BenchmarkTable1Estimate regenerates Table 1 (benchmark inventory with
// measured k and kcom) per iteration.
func BenchmarkTable1Estimate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := report.Table1(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2DepthSweep regenerates Table 2 (PCTWM rates over bug
// depths d..d+2) per iteration.
func BenchmarkTable2DepthSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := report.Table2(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3HistorySweep regenerates Table 3 (PCTWM rates over
// history depths h=1..4) per iteration.
func BenchmarkTable3HistorySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := report.Table3(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Apps regenerates Table 4 (application testing overhead,
// C11Tester vs PCTWM) per iteration.
func BenchmarkTable4Apps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := report.Table4(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Best regenerates the Figure 5 series (highest hit rates
// per strategy per benchmark) per iteration.
func BenchmarkFigure5Best(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := report.Figure5(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6InsertedWrites regenerates the Figure 6 series (hit
// rate vs inserted relaxed writes) per iteration.
func BenchmarkFigure6InsertedWrites(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := report.Figure6(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// The per-strategy engine benchmarks below measure single-execution cost
// — the quantity behind Table 4's overhead discussion (PCTWM maintains
// thread views; C11Tester-style random picks uniformly).

func benchStrategy(b *testing.B, newStrategy func(est harness.Estimate) engine.Strategy) {
	bench, err := benchprog.ByName("rwlock")
	if err != nil {
		b.Fatal(err)
	}
	prog := bench.Program(0)
	opts := bench.Options()
	est := harness.EstimateParams(prog, 5, 1, opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Run(prog, newStrategy(est), int64(i), opts)
	}
}

func BenchmarkEngineRandom(b *testing.B) {
	benchStrategy(b, func(harness.Estimate) engine.Strategy { return core.NewRandom() })
}

func BenchmarkEnginePCT(b *testing.B) {
	benchStrategy(b, func(est harness.Estimate) engine.Strategy { return core.NewPCT(2, est.K) })
}

func BenchmarkEnginePCTWM(b *testing.B) {
	benchStrategy(b, func(est harness.Estimate) engine.Strategy { return core.NewPCTWM(2, 1, est.KCom) })
}

// BenchmarkTrialLoop measures the steady-state trial loop — the quantity
// the Runner refactor optimizes: one pooled Runner, one strategy value
// (Begin resets per run), a new seed each round. Compare against
// BenchmarkEnginePCTWM (one-shot engine.Run per trial) for the pooling
// win; historical BENCH_engine.json records both.
func BenchmarkTrialLoop(b *testing.B) {
	bench, err := benchprog.ByName("rwlock")
	if err != nil {
		b.Fatal(err)
	}
	prog := bench.Program(0)
	opts := bench.Options()
	est := harness.EstimateParams(prog, 5, 1, opts)
	r := engine.NewRunner(prog, opts)
	strat := core.NewPCTWM(2, 1, est.KCom)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(strat, int64(i))
	}
}

// BenchmarkRunnerReuse is BenchmarkTrialLoop with a fresh strategy per
// round — isolating the Runner's pooling from strategy reuse (the
// difference is the strategy's own per-run allocation).
func BenchmarkRunnerReuse(b *testing.B) {
	bench, err := benchprog.ByName("rwlock")
	if err != nil {
		b.Fatal(err)
	}
	prog := bench.Program(0)
	opts := bench.Options()
	est := harness.EstimateParams(prog, 5, 1, opts)
	r := engine.NewRunner(prog, opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(core.NewPCTWM(2, 1, est.KCom), int64(i))
	}
}

// Exhaustive-exploration throughput. One iteration enumerates the full
// reachable outcome space of the litmus suite — the workload behind the
// conformance tests and the CI models job. The serial/parallel pair is
// what `pctwm-bench -explore` snapshots into BENCH_engine.json.

func exploreSuite(b *testing.B, workers int) {
	targets := litmus.Suite()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, lt := range targets {
			_, res := enumerate.Outcomes(lt.Program, engine.Options{},
				enumerate.Config{Limit: 2_000_000, Workers: workers}, func(o *engine.Outcome) string {
					return lt.Outcome(o.FinalValues)
				})
			if res.Drift != nil {
				b.Fatal(res.Drift)
			}
			total += res.Runs
		}
		if i == 0 {
			b.ReportMetric(float64(total), "executions")
		}
	}
}

// BenchmarkExploreSuiteSerial: the pooled serial DFS (one Runner reused
// across every leaf).
func BenchmarkExploreSuiteSerial(b *testing.B) { exploreSuite(b, 1) }

// BenchmarkExploreSuiteParallel: subtree-sharded exploration on
// GOMAXPROCS workers; the counted executions are identical to serial.
func BenchmarkExploreSuiteParallel(b *testing.B) { exploreSuite(b, 0) }

// oneShotScript replicates the pre-pooling explorer's scripted strategy:
// follow a fixed decision prefix, take alternative 0 beyond it, record
// arities. Kept here so the retired one-shot exploration stays
// measurable as a baseline.
type oneShotScript struct {
	script []int
	pos    int
	arity  []int
}

func (s *oneShotScript) Name() string                         { return "oneshot-enumerate" }
func (s *oneShotScript) Begin(engine.ProgramInfo, *rand.Rand) {}
func (s *oneShotScript) OnEvent(*memmodel.Event)              {}
func (s *oneShotScript) OnThreadStart(_, _ memmodel.ThreadID) {}
func (s *oneShotScript) OnSpin(memmodel.ThreadID)             {}

func (s *oneShotScript) decide(n int) int {
	s.arity = append(s.arity, n)
	choice := 0
	if s.pos < len(s.script) {
		choice = s.script[s.pos]
	}
	s.pos++
	if choice >= n {
		choice = n - 1
	}
	return choice
}

func (s *oneShotScript) NextThread(enabled []engine.PendingOp) memmodel.ThreadID {
	return enabled[s.decide(len(enabled))].TID
}

func (s *oneShotScript) PickRead(rc engine.ReadContext) int {
	return s.decide(len(rc.Candidates))
}

// BenchmarkExploreSuiteOneShot emulates the pre-pooling explorer — a
// fresh engine.Run (fresh Runner, arenas, location tables) per leaf,
// with the same backtracking walk — so the pooling win stays measurable
// after the old path's removal.
func BenchmarkExploreSuiteOneShot(b *testing.B) {
	targets := litmus.Suite()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, lt := range targets {
			runs := 0
			script := []int{}
			for runs < 2_000_000 {
				s := &oneShotScript{script: script}
				engine.Run(lt.Program, s, 0, engine.Options{})
				runs++
				next := make([]int, len(s.arity))
				copy(next, script)
				j := len(s.arity) - 1
				for j >= 0 && next[j]+1 >= s.arity[j] {
					j--
				}
				if j < 0 {
					break
				}
				script = append(next[:j:j], next[j]+1)
			}
		}
	}
}

// BenchmarkAblations regenerates the ablation study (PCTWM ingredient
// contributions) per iteration.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := report.Ablations(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}
