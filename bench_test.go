package pctwm

import (
	"io"
	"testing"

	"pctwm/internal/benchprog"
	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/harness"
	"pctwm/internal/report"
)

// benchCfg is a scaled-down experiment configuration so one benchmark
// iteration regenerates a full (small) table or figure. Run the
// pctwm-experiments command for paper-sized runs.
var benchCfg = report.Config{Runs: 40, Fig6Runs: 30, PerfRuns: 2, MaxH: 2, Seed: 1}

// BenchmarkTable1Estimate regenerates Table 1 (benchmark inventory with
// measured k and kcom) per iteration.
func BenchmarkTable1Estimate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := report.Table1(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2DepthSweep regenerates Table 2 (PCTWM rates over bug
// depths d..d+2) per iteration.
func BenchmarkTable2DepthSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := report.Table2(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3HistorySweep regenerates Table 3 (PCTWM rates over
// history depths h=1..4) per iteration.
func BenchmarkTable3HistorySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := report.Table3(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Apps regenerates Table 4 (application testing overhead,
// C11Tester vs PCTWM) per iteration.
func BenchmarkTable4Apps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := report.Table4(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Best regenerates the Figure 5 series (highest hit rates
// per strategy per benchmark) per iteration.
func BenchmarkFigure5Best(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := report.Figure5(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6InsertedWrites regenerates the Figure 6 series (hit
// rate vs inserted relaxed writes) per iteration.
func BenchmarkFigure6InsertedWrites(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := report.Figure6(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// The per-strategy engine benchmarks below measure single-execution cost
// — the quantity behind Table 4's overhead discussion (PCTWM maintains
// thread views; C11Tester-style random picks uniformly).

func benchStrategy(b *testing.B, newStrategy func(est harness.Estimate) engine.Strategy) {
	bench, err := benchprog.ByName("rwlock")
	if err != nil {
		b.Fatal(err)
	}
	prog := bench.Program(0)
	opts := bench.Options()
	est := harness.EstimateParams(prog, 5, 1, opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Run(prog, newStrategy(est), int64(i), opts)
	}
}

func BenchmarkEngineRandom(b *testing.B) {
	benchStrategy(b, func(harness.Estimate) engine.Strategy { return core.NewRandom() })
}

func BenchmarkEnginePCT(b *testing.B) {
	benchStrategy(b, func(est harness.Estimate) engine.Strategy { return core.NewPCT(2, est.K) })
}

func BenchmarkEnginePCTWM(b *testing.B) {
	benchStrategy(b, func(est harness.Estimate) engine.Strategy { return core.NewPCTWM(2, 1, est.KCom) })
}

// BenchmarkTrialLoop measures the steady-state trial loop — the quantity
// the Runner refactor optimizes: one pooled Runner, one strategy value
// (Begin resets per run), a new seed each round. Compare against
// BenchmarkEnginePCTWM (one-shot engine.Run per trial) for the pooling
// win; historical BENCH_engine.json records both.
func BenchmarkTrialLoop(b *testing.B) {
	bench, err := benchprog.ByName("rwlock")
	if err != nil {
		b.Fatal(err)
	}
	prog := bench.Program(0)
	opts := bench.Options()
	est := harness.EstimateParams(prog, 5, 1, opts)
	r := engine.NewRunner(prog, opts)
	strat := core.NewPCTWM(2, 1, est.KCom)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(strat, int64(i))
	}
}

// BenchmarkRunnerReuse is BenchmarkTrialLoop with a fresh strategy per
// round — isolating the Runner's pooling from strategy reuse (the
// difference is the strategy's own per-run allocation).
func BenchmarkRunnerReuse(b *testing.B) {
	bench, err := benchprog.ByName("rwlock")
	if err != nil {
		b.Fatal(err)
	}
	prog := bench.Program(0)
	opts := bench.Options()
	est := harness.EstimateParams(prog, 5, 1, opts)
	r := engine.NewRunner(prog, opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(core.NewPCTWM(2, 1, est.KCom), int64(i))
	}
}

// BenchmarkAblations regenerates the ablation study (PCTWM ingredient
// contributions) per iteration.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := report.Ablations(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}
