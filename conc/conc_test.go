package conc_test

import (
	"testing"

	"pctwm"
	"pctwm/conc"
	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/enumerate"
	"pctwm/internal/memmodel"
)

// strategies used across the suite: the primitives must be correct under
// every tester.
func strategies() []func() engine.Strategy {
	return []func() engine.Strategy{
		func() engine.Strategy { return core.NewRandom() },
		func() engine.Strategy { return core.NewPCT(3, 40) },
		func() engine.Strategy { return core.NewPCTWM(2, 2, 20) },
		func() engine.Strategy { return core.NewPCTWM(0, 1, 20) },
	}
}

// checkNoFailure runs the program many rounds under every strategy and
// requires no assertion failures, races, aborts, or deadlocks.
func checkNoFailure(t *testing.T, p *engine.Program, rounds int) {
	t.Helper()
	opts := engine.Options{DetectRaces: true}
	for _, ns := range strategies() {
		name := ns().Name()
		for seed := int64(0); seed < int64(rounds); seed++ {
			o := engine.Run(p, ns(), seed, opts)
			if o.BugHit {
				t.Fatalf("[%s seed %d] %v", name, seed, o.BugMessages)
			}
			if len(o.Races) > 0 {
				t.Fatalf("[%s seed %d] race: %v", name, seed, o.Races[0])
			}
			if o.Aborted || o.Deadlocked {
				t.Fatalf("[%s seed %d] aborted=%v deadlocked=%v", name, seed, o.Aborted, o.Deadlocked)
			}
		}
	}
}

// TestMutexMutualExclusion: plain counter increments under the mutex are
// race-free and never lose updates.
func TestMutexMutualExclusion(t *testing.T) {
	p := engine.NewProgram("mutex")
	m := conc.NewMutex(p, "m")
	count := p.Loc("count", 0)
	const workers = 3
	for i := 0; i < workers; i++ {
		p.AddThread(func(th *engine.Thread) {
			m.Lock(th)
			v := th.Load(count, memmodel.NonAtomic)
			th.Store(count, v+1, memmodel.NonAtomic)
			th.Assert(th.Load(count, memmodel.NonAtomic) == v+1, "count torn inside the critical section")
			m.Unlock(th)
		})
	}
	checkNoFailure(t, p, 150)
	o := engine.Run(p, core.NewRandom(), 1, engine.Options{})
	if o.FinalValues["count"] != workers {
		t.Fatalf("lost update: %v", o.FinalValues)
	}
}

// TestMutexExhaustive: every schedule and reads-from choice of a
// two-thread try-lock program keeps mutual exclusion — no data race, and
// the counter equals the number of successful acquisitions. TryLock keeps
// the program loop-free so the exploration terminates.
func TestMutexExhaustive(t *testing.T) {
	p := engine.NewProgram("mutex-exhaustive")
	m := conc.NewMutex(p, "m")
	count := p.Loc("count", 0)
	won := p.LocArray("won", 2, 0)
	for i := 0; i < 2; i++ {
		i := i
		p.AddThread(func(th *engine.Thread) {
			if !m.TryLock(th) {
				return
			}
			th.Store(won+memmodel.Loc(i), 1, memmodel.NonAtomic)
			v := th.Load(count, memmodel.NonAtomic)
			th.Store(count, v+1, memmodel.NonAtomic)
			m.Unlock(th)
		})
	}
	res := enumerate.Explore(p, engine.Options{DetectRaces: true}, 200000, func(o *engine.Outcome) {
		if len(o.Races) > 0 {
			t.Fatalf("race under some schedule: %v", o.Races[0])
		}
		locked := o.FinalValues["won[0]"] + o.FinalValues["won[1]"]
		if o.FinalValues["count"] != locked {
			t.Fatalf("lost update under some schedule: %v", o.FinalValues)
		}
	})
	if !res.Complete {
		t.Fatalf("state space unexpectedly large (%d runs)", res.Runs)
	}
	if res.Truncated > 0 {
		t.Fatalf("%d truncated executions", res.Truncated)
	}
	t.Logf("explored %d executions", res.Runs)
}

// TestTryLock: at most one of two competing TryLocks succeeds while the
// lock is free; the loser sees false.
func TestTryLock(t *testing.T) {
	p := engine.NewProgram("trylock")
	m := conc.NewMutex(p, "m")
	got := p.LocArray("got", 2, 0)
	for i := 0; i < 2; i++ {
		i := i
		p.AddThread(func(th *engine.Thread) {
			if m.TryLock(th) {
				th.Store(got+memmodel.Loc(i), 1, memmodel.NonAtomic)
				m.Unlock(th)
			}
		})
	}
	checkNoFailure(t, p, 100)
}

// TestRWMutex: readers see complete writer publications; concurrent
// readers do not race with each other.
func TestRWMutex(t *testing.T) {
	p := engine.NewProgram("rwmutex")
	l := conc.NewRWMutex(p, "l")
	d1 := p.Loc("d1", 0)
	d2 := p.Loc("d2", 0)
	p.AddNamedThread("writer", func(th *engine.Thread) {
		l.Lock(th)
		th.Store(d1, 1, memmodel.NonAtomic)
		th.Store(d2, 2, memmodel.NonAtomic)
		l.Unlock(th)
	})
	reader := func(th *engine.Thread) {
		l.RLock(th)
		v1 := th.Load(d1, memmodel.NonAtomic)
		v2 := th.Load(d2, memmodel.NonAtomic)
		l.RUnlock(th)
		th.Assert((v1 == 0 && v2 == 0) || (v1 == 1 && v2 == 2),
			"torn read: d1=%d d2=%d", v1, v2)
	}
	p.AddNamedThread("reader1", reader)
	p.AddNamedThread("reader2", reader)
	checkNoFailure(t, p, 150)
}

// TestWaitGroup: after Wait, all workers' plain writes are visible.
func TestWaitGroup(t *testing.T) {
	const workers = 3
	p := engine.NewProgram("waitgroup")
	wg := conc.NewWaitGroup(p, "wg", workers)
	out := p.LocArray("out", workers, 0)
	for i := 0; i < workers; i++ {
		i := i
		p.AddThread(func(th *engine.Thread) {
			th.Store(out+memmodel.Loc(i), memmodel.Value(i+1), memmodel.NonAtomic)
			wg.Done(th)
		})
	}
	p.AddNamedThread("waiter", func(th *engine.Thread) {
		wg.Wait(th)
		sum := memmodel.Value(0)
		for i := 0; i < workers; i++ {
			sum += th.Load(out+memmodel.Loc(i), memmodel.NonAtomic)
		}
		th.Assert(sum == 6, "waiter missed worker writes: sum=%d", sum)
	})
	checkNoFailure(t, p, 150)
}

// TestBarrier: both parties see each other's pre-barrier writes after
// Await, across two phases.
func TestBarrier(t *testing.T) {
	p := engine.NewProgram("barrier")
	b := conc.NewBarrier(p, "b", 2)
	x := p.LocArray("x", 2, 0)
	y := p.LocArray("y", 2, 0)
	for i := 0; i < 2; i++ {
		i := i
		other := memmodel.Loc(1 - i)
		p.AddThread(func(th *engine.Thread) {
			th.Store(x+memmodel.Loc(i), 1, memmodel.NonAtomic)
			b.Await(th)
			th.Assert(th.Load(x+other, memmodel.NonAtomic) == 1, "phase-1 write invisible")
			th.Store(y+memmodel.Loc(i), 1, memmodel.NonAtomic)
			b.Await(th)
			th.Assert(th.Load(y+other, memmodel.NonAtomic) == 1, "phase-2 write invisible")
		})
	}
	checkNoFailure(t, p, 150)
}

// TestOnce: fn runs exactly once; non-runners observe its effects.
func TestOnce(t *testing.T) {
	p := engine.NewProgram("once")
	o := conc.NewOnce(p, "o")
	ran := p.Loc("ran", 0)
	winners := p.Loc("winners", 0)
	for i := 0; i < 3; i++ {
		p.AddThread(func(th *engine.Thread) {
			won := o.Do(th, func() {
				v := th.Load(ran, memmodel.NonAtomic)
				th.Store(ran, v+1, memmodel.NonAtomic)
			})
			if won {
				th.FetchAdd(winners, 1, memmodel.Relaxed)
			}
			th.Assert(th.Load(ran, memmodel.NonAtomic) == 1, "once effects invisible or doubled")
		})
	}
	checkNoFailure(t, p, 150)
	out := engine.Run(p, core.NewRandom(), 7, engine.Options{})
	if out.FinalValues["winners"] != 1 {
		t.Fatalf("winners = %v, want 1", out.FinalValues["winners"])
	}
}

// TestSemaphore: with one permit, the protected section is exclusive.
func TestSemaphore(t *testing.T) {
	p := engine.NewProgram("semaphore")
	s := conc.NewSemaphore(p, "s", 1)
	count := p.Loc("count", 0)
	for i := 0; i < 2; i++ {
		p.AddThread(func(th *engine.Thread) {
			s.Acquire(th)
			v := th.Load(count, memmodel.NonAtomic)
			th.Store(count, v+1, memmodel.NonAtomic)
			s.Release(th)
		})
	}
	checkNoFailure(t, p, 150)
	o := engine.Run(p, core.NewRandom(), 9, engine.Options{})
	if o.FinalValues["count"] != 2 {
		t.Fatalf("semaphore lost an update: %v", o.FinalValues)
	}
}

// TestPrimitivesThroughPublicAPI: conc composes with the public facade.
func TestPrimitivesThroughPublicAPI(t *testing.T) {
	p := pctwm.NewProgram("facade")
	m := conc.NewMutex(p, "m")
	c := p.Loc("c", 0)
	for i := 0; i < 2; i++ {
		p.AddThread(func(th *pctwm.Thread) {
			m.Lock(th)
			th.Store(c, th.Load(c, pctwm.NonAtomic)+1, pctwm.NonAtomic)
			m.Unlock(th)
		})
	}
	o := pctwm.Run(p, pctwm.NewPCTWM(1, 1, 8), 3, pctwm.Options{DetectRaces: true})
	if o.Failed() || o.FinalValues["c"] != 2 {
		t.Fatalf("outcome %+v", o.FinalValues)
	}
}
