package conc

import (
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// Stack is a Treiber lock-free stack with release/acquire publication.
// Nodes are allocated dynamically: [0] value, [1] next (0 = nil).
type Stack struct {
	top memmodel.Loc
}

// NewStack declares the stack's top pointer.
func NewStack(p *engine.Program, name string) *Stack {
	return &Stack{top: p.Loc(name+".top", 0)}
}

// Push adds v on top of the stack.
func (s *Stack) Push(t *engine.Thread, v memmodel.Value) {
	node := t.Alloc("stknode", 2)
	t.Store(node, v, memmodel.NonAtomic)
	for {
		old := t.Load(s.top, memmodel.Relaxed)
		t.Store(node+1, old, memmodel.Relaxed)
		// Release publishes the node's plain payload to whoever pops it.
		if _, ok := t.CAS(s.top, old, memmodel.Value(node), memmodel.Release, memmodel.Relaxed); ok {
			return
		}
		t.Yield()
	}
}

// Pop removes and returns the top value; ok is false when the stack looks
// empty.
func (s *Stack) Pop(t *engine.Thread) (memmodel.Value, bool) {
	for {
		// Acquire synchronizes with the pushing CAS, making the node's
		// payload and next pointer visible.
		old := t.Load(s.top, memmodel.Acquire)
		if old == 0 {
			return 0, false
		}
		node := memmodel.Loc(old)
		next := t.Load(node+1, memmodel.Relaxed)
		if _, ok := t.CAS(s.top, old, next, memmodel.AcqRel, memmodel.Relaxed); ok {
			return t.Load(node, memmodel.NonAtomic), true
		}
		t.Yield()
	}
}

// TryPop is a single bounded attempt (for loop-free exhaustive tests).
func (s *Stack) TryPop(t *engine.Thread) (memmodel.Value, bool) {
	old := t.Load(s.top, memmodel.Acquire)
	if old == 0 {
		return 0, false
	}
	node := memmodel.Loc(old)
	next := t.Load(node+1, memmodel.Relaxed)
	if _, ok := t.CAS(s.top, old, next, memmodel.AcqRel, memmodel.Relaxed); ok {
		return t.Load(node, memmodel.NonAtomic), true
	}
	return 0, false
}

// SPSCQueue is a bounded single-producer single-consumer ring buffer with
// release/acquire index publication (the classic Lamport queue, correctly
// fenced for C11).
type SPSCQueue struct {
	capacity memmodel.Value
	head     memmodel.Loc // consumer index
	tail     memmodel.Loc // producer index
	buf      memmodel.Loc
}

// NewSPSCQueue declares a ring of the given capacity (must be ≥ 1).
func NewSPSCQueue(p *engine.Program, name string, capacity int) *SPSCQueue {
	if capacity < 1 {
		panic("conc: SPSC queue capacity must be at least 1")
	}
	return &SPSCQueue{
		capacity: memmodel.Value(capacity),
		head:     p.Loc(name+".head", 0),
		tail:     p.Loc(name+".tail", 0),
		buf:      p.LocArray(name+".buf", capacity, 0),
	}
}

func (q *SPSCQueue) slot(i memmodel.Value) memmodel.Loc {
	return q.buf + memmodel.Loc(i%q.capacity)
}

// TryEnqueue appends v; false when the ring is full. Producer-side only.
func (q *SPSCQueue) TryEnqueue(t *engine.Thread, v memmodel.Value) bool {
	tail := t.Load(q.tail, memmodel.Relaxed) // own index
	head := t.Load(q.head, memmodel.Acquire) // consumer progress
	if tail-head >= q.capacity {
		return false
	}
	t.Store(q.slot(tail), v, memmodel.NonAtomic)
	t.Store(q.tail, tail+1, memmodel.Release) // publish the element
	return true
}

// TryDequeue removes the oldest element; false when the ring looks empty.
// Consumer-side only.
func (q *SPSCQueue) TryDequeue(t *engine.Thread) (memmodel.Value, bool) {
	head := t.Load(q.head, memmodel.Relaxed) // own index
	tail := t.Load(q.tail, memmodel.Acquire) // producer progress
	if head == tail {
		return 0, false
	}
	v := t.Load(q.slot(head), memmodel.NonAtomic)
	t.Store(q.head, head+1, memmodel.Release) // free the slot
	return v, true
}
