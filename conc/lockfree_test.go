package conc_test

import (
	"testing"

	"pctwm/conc"
	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/enumerate"
	"pctwm/internal/memmodel"
)

// TestStackPushPop: two pushers and one popper; every popped value was
// pushed, payloads never race, nothing is duplicated.
func TestStackPushPop(t *testing.T) {
	p := engine.NewProgram("stack")
	s := conc.NewStack(p, "s")
	got := p.LocArray("got", 2, 0)
	p.AddThread(func(th *engine.Thread) { s.Push(th, 11) })
	p.AddThread(func(th *engine.Thread) { s.Push(th, 22) })
	p.AddThread(func(th *engine.Thread) {
		for i := 0; i < 2; i++ {
			if v, ok := s.Pop(th); ok {
				th.Assert(v == 11 || v == 22, "popped invented value %d", v)
				th.Store(got+memmodel.Loc(i), v, memmodel.NonAtomic)
			}
		}
	})
	checkNoFailure(t, p, 150)
	// Post-condition on one run: no duplicates among popped values.
	o := engine.Run(p, core.NewRandom(), 5, engine.Options{DetectRaces: true})
	a, b := o.FinalValues["got[0]"], o.FinalValues["got[1]"]
	if a != 0 && a == b {
		t.Fatalf("duplicate pop: %v", o.FinalValues)
	}
}

// TestStackExhaustive: one pusher, one try-popping thief, every schedule:
// the thief either sees the empty stack or the complete pushed node.
func TestStackExhaustive(t *testing.T) {
	p := engine.NewProgram("stack-exhaustive")
	s := conc.NewStack(p, "s")
	r := p.Loc("r", -1)
	p.AddThread(func(th *engine.Thread) { s.Push(th, 7) })
	p.AddThread(func(th *engine.Thread) {
		if v, ok := s.TryPop(th); ok {
			th.Store(r, v, memmodel.NonAtomic)
		}
	})
	res := enumerate.Explore(p, engine.Options{DetectRaces: true}, 300000, func(o *engine.Outcome) {
		if len(o.Races) > 0 {
			t.Fatalf("stack racy under some schedule: %v", o.Races[0])
		}
		if v := o.FinalValues["r"]; v != -1 && v != 7 {
			t.Fatalf("torn pop: %v", o.FinalValues)
		}
	})
	if !res.Complete {
		t.Fatalf("state space unexpectedly large (%d runs)", res.Runs)
	}
	t.Logf("explored %d executions", res.Runs)
}

// TestSPSCQueueFIFO: the consumer receives the producer's elements in
// order, fully published, with no races.
func TestSPSCQueueFIFO(t *testing.T) {
	const n = 4
	p := engine.NewProgram("spsc")
	q := conc.NewSPSCQueue(p, "q", 2)
	recv := p.LocArray("recv", n, 0)
	p.AddNamedThread("producer", func(th *engine.Thread) {
		for i := 1; i <= n; i++ {
			for !q.TryEnqueue(th, memmodel.Value(i*10)) {
				th.Yield()
			}
		}
	})
	p.AddNamedThread("consumer", func(th *engine.Thread) {
		for i := 0; i < n; {
			v, ok := q.TryDequeue(th)
			if !ok {
				th.Yield()
				continue
			}
			th.Assert(v == memmodel.Value((i+1)*10), "out of order: got %d at position %d", v, i)
			th.Store(recv+memmodel.Loc(i), v, memmodel.NonAtomic)
			i++
		}
	})
	checkNoFailure(t, p, 120)
	o := engine.Run(p, core.NewPCTWM(2, 1, 30), 3, engine.Options{DetectRaces: true})
	if o.FinalValues["recv[3]"] != 40 {
		t.Fatalf("consumer did not drain: %v", o.FinalValues)
	}
}

// TestSPSCQueueExhaustive: a single-element handoff is race-free and
// never torn under every schedule.
func TestSPSCQueueExhaustive(t *testing.T) {
	p := engine.NewProgram("spsc-exhaustive")
	q := conc.NewSPSCQueue(p, "q", 1)
	r := p.Loc("r", -1)
	p.AddThread(func(th *engine.Thread) { q.TryEnqueue(th, 9) })
	p.AddThread(func(th *engine.Thread) {
		if v, ok := q.TryDequeue(th); ok {
			th.Store(r, v, memmodel.NonAtomic)
		}
	})
	res := enumerate.Explore(p, engine.Options{DetectRaces: true}, 300000, func(o *engine.Outcome) {
		if len(o.Races) > 0 {
			t.Fatalf("SPSC queue racy under some schedule: %v", o.Races[0])
		}
		if v := o.FinalValues["r"]; v != -1 && v != 9 {
			t.Fatalf("torn handoff: %v", o.FinalValues)
		}
	})
	if !res.Complete {
		t.Fatalf("state space unexpectedly large (%d runs)", res.Runs)
	}
	t.Logf("explored %d executions", res.Runs)
}

// TestSPSCSeededBugIsCaught: weakening the tail publication to relaxed
// makes the handoff racy — and the testers find it.
func TestSPSCSeededBugIsCaught(t *testing.T) {
	p := engine.NewProgram("spsc-bug")
	tail := p.Loc("tail", 0)
	buf := p.Loc("buf", 0)
	r := p.Loc("r", -1)
	p.AddThread(func(th *engine.Thread) {
		th.Store(buf, 9, memmodel.NonAtomic)
		th.Store(tail, 1, memmodel.Relaxed) // seeded: should be release
	})
	p.AddThread(func(th *engine.Thread) {
		if th.Load(tail, memmodel.Acquire) == 1 {
			th.Store(r, th.Load(buf, memmodel.NonAtomic), memmodel.NonAtomic)
		}
	})
	raced := false
	for seed := int64(0); seed < 200 && !raced; seed++ {
		o := engine.Run(p, core.NewRandom(), seed, engine.Options{DetectRaces: true})
		raced = len(o.Races) > 0
	}
	if !raced {
		t.Fatal("seeded relaxed publication not caught")
	}
}
