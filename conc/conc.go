// Package conc provides correctly synchronized concurrency primitives —
// mutexes, reader-writer locks, wait groups, barriers, once cells and
// semaphores — built on the pctwm engine's C11-style atomics. Test
// programs use them for the parts that should be correct, so the testing
// strategies can focus on the code under test; the suite also serves as
// executable documentation of the memory orders each primitive needs
// (every primitive is verified race-free and linearizable-enough by
// exhaustive exploration in the package tests).
package conc

import (
	"fmt"

	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// Mutex is a CAS spinlock with acquire/release semantics.
type Mutex struct {
	state memmodel.Loc
}

// NewMutex declares the mutex's state in the program.
func NewMutex(p *engine.Program, name string) *Mutex {
	return &Mutex{state: p.Loc(name+".lock", 0)}
}

// Lock spins until the mutex is acquired. Acquiring synchronizes with the
// previous holder's Unlock.
func (m *Mutex) Lock(t *engine.Thread) {
	for {
		if _, ok := t.CAS(m.state, 0, 1, memmodel.Acquire, memmodel.Relaxed); ok {
			return
		}
		t.Yield()
	}
}

// TryLock attempts one acquisition.
func (m *Mutex) TryLock(t *engine.Thread) bool {
	_, ok := t.CAS(m.state, 0, 1, memmodel.Acquire, memmodel.Relaxed)
	return ok
}

// Unlock releases the mutex.
func (m *Mutex) Unlock(t *engine.Thread) {
	t.Store(m.state, 0, memmodel.Release)
}

// RWMutex is a reader-writer spinlock over a single counter: -1 writer,
// 0 free, n > 0 readers.
type RWMutex struct {
	state memmodel.Loc
}

// NewRWMutex declares the lock's state in the program.
func NewRWMutex(p *engine.Program, name string) *RWMutex {
	return &RWMutex{state: p.Loc(name+".rwlock", 0)}
}

// Lock acquires the write lock.
func (l *RWMutex) Lock(t *engine.Thread) {
	for {
		if _, ok := t.CAS(l.state, 0, -1, memmodel.Acquire, memmodel.Relaxed); ok {
			return
		}
		t.Yield()
	}
}

// Unlock releases the write lock.
func (l *RWMutex) Unlock(t *engine.Thread) {
	t.Store(l.state, 0, memmodel.Release)
}

// RLock acquires a read lock.
func (l *RWMutex) RLock(t *engine.Thread) {
	for {
		c := t.Load(l.state, memmodel.Relaxed)
		if c >= 0 {
			// No writer (in this view): try to bump the reader count. A
			// stale c simply fails the CAS and retries.
			if _, ok := t.CAS(l.state, c, c+1, memmodel.Acquire, memmodel.Relaxed); ok {
				return
			}
		}
		t.Yield()
	}
}

// RUnlock releases a read lock.
func (l *RWMutex) RUnlock(t *engine.Thread) {
	t.FetchAdd(l.state, -1, memmodel.Release)
}

// WaitGroup counts outstanding work; Wait spins until the count drops to
// zero and synchronizes with every Done.
type WaitGroup struct {
	count memmodel.Loc
}

// NewWaitGroup declares the counter with an initial count.
func NewWaitGroup(p *engine.Program, name string, initial int) *WaitGroup {
	return &WaitGroup{count: p.Loc(name+".wg", memmodel.Value(initial))}
}

// Add adjusts the counter.
func (wg *WaitGroup) Add(t *engine.Thread, delta int) {
	t.FetchAdd(wg.count, memmodel.Value(delta), memmodel.AcqRel)
}

// Done decrements the counter, releasing the waiter.
func (wg *WaitGroup) Done(t *engine.Thread) {
	t.FetchAdd(wg.count, -1, memmodel.AcqRel)
}

// Wait spins until the counter reaches zero; it acquires the releases of
// all Done calls.
func (wg *WaitGroup) Wait(t *engine.Thread) {
	for t.Load(wg.count, memmodel.Acquire) != 0 {
		t.Yield()
	}
}

// Barrier is a reusable counter barrier for a fixed number of parties.
type Barrier struct {
	parties int
	arrived memmodel.Loc
	phase   memmodel.Loc
}

// NewBarrier declares a barrier for the given number of parties.
func NewBarrier(p *engine.Program, name string, parties int) *Barrier {
	if parties < 1 {
		panic(fmt.Sprintf("conc: barrier with %d parties", parties))
	}
	return &Barrier{
		parties: parties,
		arrived: p.Loc(name+".arrived", 0),
		phase:   p.Loc(name+".phase", 0),
	}
}

// Await blocks until all parties have arrived; crossing the barrier
// synchronizes every party with every other.
func (b *Barrier) Await(t *engine.Thread) {
	phase := t.Load(b.phase, memmodel.Acquire)
	if n := t.FetchAdd(b.arrived, 1, memmodel.AcqRel); int(n)+1 == b.parties {
		// Last arriver: reset and advance the phase.
		t.Store(b.arrived, 0, memmodel.Relaxed)
		t.Store(b.phase, phase+1, memmodel.Release)
		return
	}
	for t.Load(b.phase, memmodel.Acquire) == phase {
		t.Yield()
	}
}

// Once runs a function exactly once across threads.
type Once struct {
	state memmodel.Loc // 0 new, 1 running, 2 done
}

// NewOnce declares the once cell.
func NewOnce(p *engine.Program, name string) *Once {
	return &Once{state: p.Loc(name+".once", 0)}
}

// Do runs fn if no other thread has; it returns true for the thread that
// ran fn. Every return synchronizes with fn's completion.
func (o *Once) Do(t *engine.Thread, fn func()) bool {
	if _, ok := t.CAS(o.state, 0, 1, memmodel.Acquire, memmodel.Acquire); ok {
		fn()
		t.Store(o.state, 2, memmodel.Release)
		return true
	}
	for t.Load(o.state, memmodel.Acquire) != 2 {
		t.Yield()
	}
	return false
}

// Semaphore is a counting semaphore.
type Semaphore struct {
	permits memmodel.Loc
}

// NewSemaphore declares a semaphore with the given number of permits.
func NewSemaphore(p *engine.Program, name string, permits int) *Semaphore {
	return &Semaphore{permits: p.Loc(name+".sem", memmodel.Value(permits))}
}

// Acquire takes one permit, spinning until one is available.
func (s *Semaphore) Acquire(t *engine.Thread) {
	for {
		n := t.Load(s.permits, memmodel.Relaxed)
		if n > 0 {
			if _, ok := t.CAS(s.permits, n, n-1, memmodel.Acquire, memmodel.Relaxed); ok {
				return
			}
		}
		t.Yield()
	}
}

// TryAcquire takes a permit if one is immediately available.
func (s *Semaphore) TryAcquire(t *engine.Thread) bool {
	n := t.Load(s.permits, memmodel.Relaxed)
	if n <= 0 {
		return false
	}
	_, ok := t.CAS(s.permits, n, n-1, memmodel.Acquire, memmodel.Relaxed)
	return ok
}

// Release returns one permit.
func (s *Semaphore) Release(t *engine.Thread) {
	t.FetchAdd(s.permits, 1, memmodel.Release)
}
