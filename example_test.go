package pctwm_test

import (
	"fmt"

	"pctwm"
)

// ExampleRun demonstrates a single controlled execution: PCTWM with bug
// depth 0 runs the threads serially on their thread-local views, so the
// store-buffering program always produces the non-SC outcome a = b = 0.
func ExampleRun() {
	p := pctwm.NewProgram("sb")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	ra := p.Loc("a", -1)
	rb := p.Loc("b", -1)
	p.AddThread(func(t *pctwm.Thread) {
		t.Store(x, 1, pctwm.Relaxed)
		t.Store(ra, t.Load(y, pctwm.Relaxed), pctwm.NonAtomic)
	})
	p.AddThread(func(t *pctwm.Thread) {
		t.Store(y, 1, pctwm.Relaxed)
		t.Store(rb, t.Load(x, pctwm.Relaxed), pctwm.NonAtomic)
	})

	o := pctwm.Run(p, pctwm.NewPCTWM(0, 1, 4), 1, pctwm.Options{})
	fmt.Printf("a=%d b=%d\n", o.FinalValues["a"], o.FinalValues["b"])
	// Output: a=0 b=0
}

// ExampleNewPCTWM shows the full testing loop on the paper's Program P1:
// with kcom = 1 the assertion's load is always the communication sink,
// and history depth 1 pins it on the mo-maximal write X = k.
func ExampleNewPCTWM() {
	const k = 5
	p := pctwm.NewProgram("p1")
	x := p.Loc("X", 0)
	p.AddThread(func(t *pctwm.Thread) {
		for i := 1; i <= k; i++ {
			t.Store(x, pctwm.Value(i), pctwm.Relaxed)
		}
	})
	p.AddThread(func(t *pctwm.Thread) {
		t.Assert(t.Load(x, pctwm.Relaxed) != k, "read X=k")
	})

	res := pctwm.RunTrials(p,
		func(o *pctwm.Outcome) bool { return o.BugHit },
		func() pctwm.Strategy { return pctwm.NewPCTWM(1, 1, 1) },
		100, 1, pctwm.Options{StopOnBug: true})
	fmt.Printf("detected in %d/%d rounds\n", res.Hits, res.Runs)
	// Output: detected in 100/100 rounds
}

// ExamplePCTWMBound evaluates the paper's §5.4 guarantee.
func ExamplePCTWMBound() {
	fmt.Printf("%.4f\n", pctwm.PCTWMBound(10, 2, 2))
	// Output: 0.0025
}

// ExampleCheckConsistency records an execution and verifies the C11
// consistency axioms of the paper's §4 on its execution graph.
func ExampleCheckConsistency() {
	p := pctwm.NewProgram("mp")
	x := p.Loc("X", 0)
	f := p.Loc("F", 0)
	p.AddThread(func(t *pctwm.Thread) {
		t.Store(x, 1, pctwm.Relaxed)
		t.Store(f, 1, pctwm.Release)
	})
	p.AddThread(func(t *pctwm.Thread) {
		if t.Load(f, pctwm.Acquire) == 1 {
			t.Load(x, pctwm.Relaxed)
		}
	})
	o := pctwm.Run(p, pctwm.NewRandomStrategy(), 42, pctwm.Options{Record: true})
	violations, err := pctwm.CheckConsistency(o.Recording)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d violations\n", len(violations))
	// Output: 0 violations
}
