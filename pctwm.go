// Package pctwm is a probabilistic concurrency testing library for weak
// memory programs, reproducing "Probabilistic Concurrency Testing for
// Weak Memory Programs" (Gao, Chakraborty, Kulahcioglu Ozkan, ASPLOS
// 2023).
//
// Programs are written against a C11-style atomics API (Load, Store, CAS,
// FetchAdd, Exchange, Fence with memory orders relaxed / acquire /
// release / acq-rel / seq-cst, plus non-atomic accesses) and executed by
// a controlled engine that plays the role of the paper's C11Tester
// substrate: threads are serialized, every read is resolved against the
// set of coherence-legal writes, and thread-local views with message
// "bags" implement the C11 semantics of the paper's Algorithm 2.
//
// Three testing strategies decide scheduling and read behaviour:
//
//   - NewRandomStrategy: C11Tester's naive random exploration;
//   - NewPCT: the priority-based PCT scheduler, adapted to weak memory
//     (reads pick uniformly among the legal candidates);
//   - NewPCTWM: the paper's contribution — it samples d communication
//     relations whose sources lie within history depth h, delaying the
//     selected sink events to run as late as possible and resolving all
//     other reads from the thread-local view.
//
// A typical test loop estimates the program parameters once and then runs
// many rounds:
//
//	p := pctwm.NewProgram("sb")
//	x := p.Loc("X", 0)
//	y := p.Loc("Y", 0)
//	p.AddThread(func(t *pctwm.Thread) {
//		t.Store(x, 1, pctwm.Relaxed)
//		t.Assert(t.Load(y, pctwm.Relaxed) == 1 || true, "...")
//	})
//	// ...
//	est := pctwm.Estimate(p, 20, 1, pctwm.Options{})
//	for seed := int64(0); seed < 1000; seed++ {
//		o := pctwm.Run(p, pctwm.NewPCTWM(2, 1, est.KCom), seed, pctwm.Options{StopOnBug: true})
//		if o.BugHit { /* found it */ }
//	}
//
// See the examples directory for complete programs, and the internal
// packages for the execution engine (internal/engine), the C11 axiom
// checker (internal/axiom), the benchmark suite (internal/benchprog) and
// the paper's experiment harness (internal/report).
package pctwm

import (
	"pctwm/internal/axiom"
	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/harness"
	"pctwm/internal/memmodel"
)

// Memory orders (C11 memory_order_* plus NonAtomic for plain accesses).
const (
	NonAtomic = memmodel.NonAtomic
	Relaxed   = memmodel.Relaxed
	Acquire   = memmodel.Acquire
	Release   = memmodel.Release
	AcqRel    = memmodel.AcqRel
	SeqCst    = memmodel.SeqCst
)

// Core types, re-exported from the engine and memory model.
type (
	// MemoryOrder is a C11 memory order.
	MemoryOrder = memmodel.Order
	// Loc identifies a shared memory location.
	Loc = memmodel.Loc
	// Value is the value stored at a location.
	Value = memmodel.Value
	// ThreadID identifies a simulated thread.
	ThreadID = memmodel.ThreadID
	// Program is an immutable weak-memory test program.
	Program = engine.Program
	// Thread is a simulated thread's handle to the engine.
	Thread = engine.Thread
	// ThreadFunc is the body of a simulated thread.
	ThreadFunc = engine.ThreadFunc
	// ThreadHandle identifies a spawned thread for Join.
	ThreadHandle = engine.ThreadHandle
	// Strategy decides scheduling and read behaviour for an execution.
	Strategy = engine.Strategy
	// Options configure one execution.
	Options = engine.Options
	// Outcome summarizes one execution.
	Outcome = engine.Outcome
	// Runner executes one program repeatedly, pooling engine state across
	// runs so a trial loop allocates near-zero memory per run.
	Runner = engine.Runner
	// Recording is the execution graph captured with Options.Record.
	Recording = engine.Recording
	// TrialResult aggregates repeated test rounds.
	TrialResult = harness.TrialResult
	// ProgramEstimate holds the measured k and kcom parameters.
	ProgramEstimate = harness.Estimate
)

// NewProgram creates an empty program with a diagnostic name.
func NewProgram(name string) *Program { return engine.NewProgram(name) }

// Run executes the program once under the strategy with the given seed.
// Repeated-trial loops should prefer NewRunner (or RunTrials), which
// reuses engine state between runs.
func Run(p *Program, s Strategy, seed int64, opts Options) *Outcome {
	return engine.Run(p, s, seed, opts)
}

// NewRunner prepares a reusable Runner for the program: location tables,
// message storage, thread shells and scheduler channels survive between
// Run calls. For a fixed strategy and seed, a run's Outcome is identical
// whether the Runner is fresh or reused. A Runner is not safe for
// concurrent use; give each worker goroutine its own.
func NewRunner(p *Program, opts Options) *Runner { return engine.NewRunner(p, opts) }

// NewRandomStrategy returns the C11Tester-style naive random strategy:
// uniform thread choice, uniform reads-from choice.
func NewRandomStrategy() Strategy { return core.NewRandom() }

// NewPCT returns the weak-memory PCT variant with bug depth d and an
// estimate k of the number of program events.
func NewPCT(d, k int) Strategy { return core.NewPCT(d, k) }

// NewPCTWM returns the PCTWM strategy with bug depth d, history depth h,
// and an estimate kcom of the number of communication events.
func NewPCTWM(d, h, kcom int) Strategy { return core.NewPCTWM(d, h, kcom) }

// NewPOS returns the partial order sampling baseline (Yuan et al., CAV
// 2018; discussed in the paper's related work).
func NewPOS() Strategy { return core.NewPOS() }

// Estimate profiles the program with random testing and returns the mean
// event count k and communication event count kcom, the inputs PCT and
// PCTWM expect.
func Estimate(p *Program, runs int, seed int64, opts Options) ProgramEstimate {
	return harness.EstimateParams(p, runs, seed, opts)
}

// RunTrials executes the program for `runs` rounds on one pooled Runner
// and counts the rounds detect flags as bug hits. Round i runs with
// seed+i; results are reproducible.
func RunTrials(p *Program, detect func(*Outcome) bool, newStrategy func() Strategy, runs int, seed int64, opts Options) TrialResult {
	return harness.RunTrials(p, detect, newStrategy, runs, seed, opts)
}

// RunTrialsWorkers is RunTrials with the rounds spread over `workers`
// goroutines (0 = GOMAXPROCS, 1 = serial), each owning a pooled Runner.
// Round i always runs with seed+i regardless of which worker claims it, so
// hit counts are identical for every worker count.
func RunTrialsWorkers(p *Program, detect func(*Outcome) bool, newStrategy func() Strategy, runs int, seed int64, opts Options, workers int) TrialResult {
	return harness.RunTrialsPooled(p, detect, newStrategy, runs, seed, opts, workers)
}

// PCTBound returns PCT's theoretical lower bound 1/(t·k^(d−1)) on the
// probability of detecting a depth-d bug (paper §2.2).
func PCTBound(t, k, d int) float64 { return core.PCTBound(t, k, d) }

// PCTWMBound returns PCTWM's theoretical lower bound 1/(h·kcom)^d (paper
// §5.4).
func PCTWMBound(kcom, d, h int) float64 { return core.PCTWMBound(kcom, d, h) }

// CheckConsistency verifies a recorded execution against the C11
// consistency axioms of the paper's §4 and returns a description of each
// violation (empty when consistent). Record the execution by running with
// Options{Record: true}.
func CheckConsistency(rec *Recording) ([]string, error) {
	g, err := axiom.FromRecording(rec)
	if err != nil {
		return nil, err
	}
	var msgs []string
	for _, v := range g.Check() {
		msgs = append(msgs, v.String())
	}
	return msgs, nil
}
