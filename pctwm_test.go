package pctwm_test

import (
	"testing"

	"pctwm"
)

// buildSB is the paper's Program SB against the public API.
func buildSB() (*pctwm.Program, func(*pctwm.Outcome) bool) {
	p := pctwm.NewProgram("sb")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	ra := p.Loc("a", -1)
	rb := p.Loc("b", -1)
	p.AddThread(func(t *pctwm.Thread) {
		t.Store(x, 1, pctwm.Relaxed)
		t.Store(ra, t.Load(y, pctwm.Relaxed), pctwm.NonAtomic)
	})
	p.AddThread(func(t *pctwm.Thread) {
		t.Store(y, 1, pctwm.Relaxed)
		t.Store(rb, t.Load(x, pctwm.Relaxed), pctwm.NonAtomic)
	})
	weak := func(o *pctwm.Outcome) bool {
		return o.FinalValues["a"] == 0 && o.FinalValues["b"] == 0
	}
	return p, weak
}

// TestPublicAPIQuickstart drives the README flow end to end: build SB,
// estimate parameters, and show PCTWM d=0 hitting the weak outcome on
// every round while random testing only sometimes does.
func TestPublicAPIQuickstart(t *testing.T) {
	p, weak := buildSB()
	est := pctwm.Estimate(p, 10, 1, pctwm.Options{})
	if est.K < 4 || est.KCom < 2 {
		t.Fatalf("estimate %+v", est)
	}

	pctwmRes := pctwm.RunTrials(p, weak, func() pctwm.Strategy {
		return pctwm.NewPCTWM(0, 1, est.KCom)
	}, 200, 2, pctwm.Options{})
	if pctwmRes.Hits != pctwmRes.Runs {
		t.Fatalf("PCTWM d=0 must always produce a=b=0, got %d/%d", pctwmRes.Hits, pctwmRes.Runs)
	}

	randRes := pctwm.RunTrials(p, weak, func() pctwm.Strategy {
		return pctwm.NewRandomStrategy()
	}, 200, 3, pctwm.Options{})
	if randRes.Hits == 0 || randRes.Hits == randRes.Runs {
		t.Fatalf("random testing should find a=b=0 sometimes, got %d/%d", randRes.Hits, randRes.Runs)
	}

	pctRes := pctwm.RunTrials(p, weak, func() pctwm.Strategy {
		return pctwm.NewPCT(1, est.K)
	}, 200, 4, pctwm.Options{})
	if pctRes.Hits == 0 {
		t.Fatalf("PCT should find a=b=0 sometimes, got %d/%d", pctRes.Hits, pctRes.Runs)
	}
}

// TestPublicAPIConsistency records executions through the public API and
// checks them against the C11 axioms.
func TestPublicAPIConsistency(t *testing.T) {
	p, _ := buildSB()
	for seed := int64(0); seed < 50; seed++ {
		o := pctwm.Run(p, pctwm.NewPCTWM(1, 2, 4), seed, pctwm.Options{Record: true})
		msgs, err := pctwm.CheckConsistency(o.Recording)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) > 0 {
			t.Fatalf("seed %d: inconsistent execution: %v", seed, msgs)
		}
	}
}

// TestBoundsExported sanity-checks the re-exported probability bounds.
func TestBoundsExported(t *testing.T) {
	if pctwm.PCTWMBound(10, 1, 2) != 0.05 {
		t.Fatalf("PCTWMBound(10,1,2) = %v", pctwm.PCTWMBound(10, 1, 2))
	}
	if pctwm.PCTBound(2, 10, 1) != 0.5 {
		t.Fatalf("PCTBound(2,10,1) = %v", pctwm.PCTBound(2, 10, 1))
	}
}

// TestSpawnJoinThroughPublicAPI covers dynamic threads via the facade.
func TestSpawnJoinThroughPublicAPI(t *testing.T) {
	p := pctwm.NewProgram("spawn")
	x := p.Loc("X", 0)
	r := p.Loc("r", -1)
	p.AddThread(func(t *pctwm.Thread) {
		h := t.Spawn(func(c *pctwm.Thread) {
			c.Store(x, 41, pctwm.Relaxed)
		})
		t.Join(h)
		t.Store(r, t.Load(x, pctwm.Relaxed)+1, pctwm.NonAtomic)
	})
	o := pctwm.Run(p, pctwm.NewPCTWM(0, 1, 4), 1, pctwm.Options{})
	if o.FinalValues["r"] != 42 {
		t.Fatalf("spawn/join through the facade broken: %v", o.FinalValues)
	}
}
