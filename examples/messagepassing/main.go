// Message passing: a walk-through of the paper's Program MP2 (§5.3), the
// three-thread relaxed message-passing chain whose bug needs exactly two
// communication relations, and of how fences repair it (Program MP1, §5.2).
package main

import (
	"fmt"

	"pctwm"
)

// buildMP2 is Program MP2: the assertion Y==1 ∧ X==0 fires only in an
// execution with two communication relations (Figure 4).
func buildMP2() *pctwm.Program {
	p := pctwm.NewProgram("mp2")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	p.AddNamedThread("T1", func(t *pctwm.Thread) {
		t.Store(x, 1, pctwm.Relaxed)
	})
	p.AddNamedThread("T2", func(t *pctwm.Thread) {
		if t.Load(x, pctwm.Relaxed) == 1 {
			t.Store(y, 1, pctwm.Relaxed)
		}
	})
	p.AddNamedThread("T3", func(t *pctwm.Thread) {
		if t.Load(y, pctwm.Relaxed) == 1 {
			t.Assert(t.Load(x, pctwm.Relaxed) != 0, "Y==1 but X==0")
		}
	})
	return p
}

// buildMP1 is Program MP1: the same communication structure protected by
// a release fence before the flag store and an acquire fence after the
// flag load; the bad outcome is no longer reachable.
func buildMP1() *pctwm.Program {
	p := pctwm.NewProgram("mp1")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	p.AddNamedThread("T1", func(t *pctwm.Thread) {
		t.Store(x, 1, pctwm.Relaxed)
		t.Fence(pctwm.Release)
		t.Store(y, 1, pctwm.Relaxed)
	})
	p.AddNamedThread("T2", func(t *pctwm.Thread) {
		if t.Load(y, pctwm.Relaxed) == 1 {
			t.Fence(pctwm.Acquire)
			t.Assert(t.Load(x, pctwm.Relaxed) == 1, "acquired Y==1 but X stale")
		}
	})
	return p
}

func main() {
	const rounds = 1000
	bug := func(o *pctwm.Outcome) bool { return o.BugHit }

	mp2 := buildMP2()
	est := pctwm.Estimate(mp2, 20, 1, pctwm.Options{})
	fmt.Printf("MP2: kcom=%d; the bug has depth d=2 (two reads must observe remote writes)\n", est.KCom)
	for d := 0; d <= 3; d++ {
		res := pctwm.RunTrials(mp2, bug, func() pctwm.Strategy {
			return pctwm.NewPCTWM(d, 1, est.KCom)
		}, rounds, 7, pctwm.Options{StopOnBug: true})
		fmt.Printf("  PCTWM d=%d: %5.1f%%  (theoretical lower bound %.4f)\n",
			d, res.Rate(), pctwm.PCTWMBound(est.KCom, d, 1))
	}

	mp1 := buildMP1()
	est1 := pctwm.Estimate(mp1, 20, 2, pctwm.Options{})
	res := pctwm.RunTrials(mp1, bug, func() pctwm.Strategy {
		return pctwm.NewPCTWM(2, 2, est1.KCom)
	}, rounds, 9, pctwm.Options{StopOnBug: true})
	fmt.Printf("\nMP1 (fence-synchronized): PCTWM d=2 finds %d violations in %d rounds\n", res.Hits, res.Runs)
	fmt.Println("the release/acquire fence pair makes the stale read inconsistent,")
	fmt.Println("so no strategy can produce it (see internal/litmus for the proof suite).")
}
