// Primitives: build a small pipeline out of the conc package's verified
// synchronization primitives (mutex, wait group, barrier) and show that
// aggressive weak-memory testing finds nothing — then break one memory
// order and watch the same harness expose it immediately.
package main

import (
	"fmt"

	"pctwm"
	"pctwm/conc"
)

// buildCorrect wires three workers that publish results under a mutex,
// synchronize on a barrier, and a collector that waits for all of them.
func buildCorrect() *pctwm.Program {
	p := pctwm.NewProgram("pipeline")
	m := conc.NewMutex(p, "m")
	wg := conc.NewWaitGroup(p, "wg", 3)
	sum := p.Loc("sum", 0)

	for i := 0; i < 3; i++ {
		i := i
		p.AddThread(func(t *pctwm.Thread) {
			m.Lock(t)
			v := t.Load(sum, pctwm.NonAtomic) // plain access under the lock
			t.Store(sum, v+pctwm.Value(i+1), pctwm.NonAtomic)
			m.Unlock(t)
			wg.Done(t)
		})
	}
	p.AddNamedThread("collector", func(t *pctwm.Thread) {
		wg.Wait(t)
		total := t.Load(sum, pctwm.NonAtomic)
		t.Assert(total == 6, "collector saw partial sum %d", total)
	})
	return p
}

// buildBroken is the same pipeline with a hand-rolled "wait group" whose
// decrement is relaxed — the collector can pass the wait without
// acquiring the workers' writes.
func buildBroken() *pctwm.Program {
	p := pctwm.NewProgram("pipeline-broken")
	m := conc.NewMutex(p, "m")
	count := p.Loc("wg", 3)
	sum := p.Loc("sum", 0)

	for i := 0; i < 3; i++ {
		i := i
		p.AddThread(func(t *pctwm.Thread) {
			m.Lock(t)
			v := t.Load(sum, pctwm.NonAtomic)
			t.Store(sum, v+pctwm.Value(i+1), pctwm.NonAtomic)
			m.Unlock(t)
			t.FetchAdd(count, -1, pctwm.Relaxed) // BUG: should be AcqRel
		})
	}
	p.AddNamedThread("collector", func(t *pctwm.Thread) {
		for i := 0; i < 24; i++ {
			if t.Load(count, pctwm.Relaxed) == 0 { // BUG: should be Acquire
				total := t.Load(sum, pctwm.NonAtomic)
				t.Assert(total == 6, "collector saw partial sum %d", total)
				return
			}
		}
	})
	return p
}

func main() {
	opts := pctwm.Options{DetectRaces: true, StopOnBug: true}
	fail := func(o *pctwm.Outcome) bool { return o.Failed() }
	const rounds = 600

	for _, v := range []struct {
		label string
		prog  *pctwm.Program
	}{
		{"correct primitives (conc.Mutex + conc.WaitGroup)", buildCorrect()},
		{"hand-rolled relaxed wait group", buildBroken()},
	} {
		est := pctwm.Estimate(v.prog, 20, 1, opts)
		fmt.Printf("%s:\n", v.label)
		for _, newStrategy := range []func() pctwm.Strategy{
			func() pctwm.Strategy { return pctwm.NewRandomStrategy() },
			func() pctwm.Strategy { return pctwm.NewPCTWM(1, 1, est.KCom) },
		} {
			res := pctwm.RunTrials(v.prog, fail, newStrategy, rounds, 5, opts)
			fmt.Printf("  %-10s failures in %3d/%d rounds (%5.1f%%)\n",
				newStrategy().Name(), res.Hits, res.Runs, res.Rate())
		}
	}
	fmt.Println("\nthe conc primitives carry the release/acquire edges the collector")
	fmt.Println("needs; dropping them to relaxed lets PCTWM expose the stale sum")
	fmt.Println("(and the race detector flag the unsynchronized reads).")
}
