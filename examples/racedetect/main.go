// Race detection: use the engine's vector-clock race detector (the
// C11Tester role) on an unsynchronized producer/consumer pair, then show
// the execution graph checker confirming that every generated execution
// still satisfies the C11 consistency axioms of the paper's §4.
package main

import (
	"fmt"

	"pctwm"
)

func main() {
	p := pctwm.NewProgram("racy-handoff")
	data := p.Loc("data", 0)
	flag := p.Loc("flag", 0)
	out := p.Loc("out", -1)

	p.AddNamedThread("producer", func(t *pctwm.Thread) {
		t.Store(data, 42, pctwm.NonAtomic) // plain payload write
		t.Store(flag, 1, pctwm.Relaxed)    // BUG: should be Release
	})
	p.AddNamedThread("consumer", func(t *pctwm.Thread) {
		for i := 0; i < 16; i++ {
			if t.Load(flag, pctwm.Relaxed) == 1 { // BUG: should be Acquire
				t.Store(out, t.Load(data, pctwm.NonAtomic), pctwm.NonAtomic)
				return
			}
		}
	})

	opts := pctwm.Options{DetectRaces: true, Record: true}
	races, stale, checked := 0, 0, 0
	const rounds = 300
	for seed := int64(0); seed < rounds; seed++ {
		o := pctwm.Run(p, pctwm.NewRandomStrategy(), seed, opts)
		if len(o.Races) > 0 {
			races++
			if races == 1 {
				fmt.Println("first detected race:", o.Races[0])
			}
		}
		if v, ok := o.FinalValues["out"]; ok && v == 0 {
			stale++
		}
		// Every recorded execution must satisfy the C11 axioms
		// (coherence, atomicity, irrMOSC, SC acyclicity).
		msgs, err := pctwm.CheckConsistency(o.Recording)
		if err != nil {
			panic(err)
		}
		if len(msgs) > 0 {
			fmt.Println("INCONSISTENT EXECUTION:", msgs)
			return
		}
		checked++
	}
	fmt.Printf("\n%d/%d rounds raced (flag handoff without release/acquire)\n", races, rounds)
	fmt.Printf("%d/%d rounds additionally delivered the stale payload 0\n", stale, rounds)
	fmt.Printf("all %d recorded executions satisfy the C11 consistency axioms\n", checked)
}
