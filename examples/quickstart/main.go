// Quickstart: test the store-buffering program (paper §2.1, Program SB)
// under all three strategies and show how often each exposes the non-SC
// outcome a = b = 0 — a weak memory behaviour no interleaving execution
// can produce.
package main

import (
	"fmt"

	"pctwm"
)

func main() {
	// Program SB: two threads, two shared variables.
	//
	//	X = 1;      Y = 1;
	//	a = Y;      b = X;
	//	assert(a == 1 || b == 1)
	p := pctwm.NewProgram("store-buffering")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	// Observation registers: written non-atomically by their own thread,
	// read back from the final state after each run.
	ra := p.Loc("a", -1)
	rb := p.Loc("b", -1)

	p.AddThread(func(t *pctwm.Thread) {
		t.Store(x, 1, pctwm.Relaxed)
		t.Store(ra, t.Load(y, pctwm.Relaxed), pctwm.NonAtomic)
	})
	p.AddThread(func(t *pctwm.Thread) {
		t.Store(y, 1, pctwm.Relaxed)
		t.Store(rb, t.Load(x, pctwm.Relaxed), pctwm.NonAtomic)
	})

	// The assertion of Program SB, checked on the final state.
	violated := func(o *pctwm.Outcome) bool {
		return o.FinalValues["a"] == 0 && o.FinalValues["b"] == 0
	}

	// Estimate the program parameters from profiling runs (the paper's
	// k and kcom inputs).
	est := pctwm.Estimate(p, 20, 1, pctwm.Options{})
	fmt.Printf("estimated k=%d events, kcom=%d communication events\n\n", est.K, est.KCom)

	const rounds = 1000
	strategies := []func() pctwm.Strategy{
		func() pctwm.Strategy { return pctwm.NewRandomStrategy() },
		func() pctwm.Strategy { return pctwm.NewPCT(1, est.K) },
		func() pctwm.Strategy { return pctwm.NewPCTWM(0, 1, est.KCom) },
	}
	for _, newStrategy := range strategies {
		name := newStrategy().Name()
		res := pctwm.RunTrials(p, violated, newStrategy, rounds, 42, pctwm.Options{})
		fmt.Printf("%-10s found a=b=0 in %4d/%d rounds (%5.1f%%)\n",
			name, res.Hits, res.Runs, res.Rate())
	}
	fmt.Println("\nPCTWM with d=0 samples the execution with no communication")
	fmt.Println("between the threads: both loads read their thread-local views,")
	fmt.Println("so every round exposes the weak outcome.")
}
