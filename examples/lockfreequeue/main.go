// Lock-free queue: build a Michael-Scott queue against the atomics API,
// first with a seeded relaxed-publication bug and then with the correct
// release/acquire orders, and compare what the testers find. This is the
// workload class the paper's msqueue benchmark covers (Table 1, d=0).
package main

import (
	"fmt"

	"pctwm"
)

// queue is a Michael-Scott queue over engine locations. Nodes are
// allocated dynamically: two cells, value and next (0 = nil).
type queue struct {
	head, tail pctwm.Loc
	// pubOrder is the publication order of the link CAS; the seeded bug
	// uses Relaxed where the correct algorithm needs Release.
	pubOrder pctwm.MemoryOrder
	// walkOrder is the order of pointer loads; correct: Acquire.
	walkOrder pctwm.MemoryOrder
}

func (q *queue) enqueue(t *pctwm.Thread, v pctwm.Value) {
	node := t.Alloc("node", 2)
	t.Store(node, v, pctwm.NonAtomic) // payload before publication
	t.Store(node+1, 0, pctwm.Relaxed)
	for i := 0; i < 8; i++ {
		last := pctwm.Loc(t.Load(q.tail, q.walkOrder))
		next := t.Load(last+1, q.walkOrder)
		if next == 0 {
			if _, ok := t.CAS(last+1, 0, pctwm.Value(node), q.pubOrder, q.walkOrder); ok {
				t.CAS(q.tail, pctwm.Value(last), pctwm.Value(node), q.pubOrder, q.walkOrder)
				return
			}
		} else {
			t.CAS(q.tail, pctwm.Value(last), next, q.pubOrder, q.walkOrder)
		}
	}
}

func (q *queue) dequeue(t *pctwm.Thread) pctwm.Value {
	for i := 0; i < 8; i++ {
		first := pctwm.Loc(t.Load(q.head, q.walkOrder))
		last := pctwm.Loc(t.Load(q.tail, q.walkOrder))
		next := t.Load(first+1, q.walkOrder)
		if first == last {
			if next == 0 {
				return 0
			}
			t.CAS(q.tail, pctwm.Value(last), next, q.pubOrder, q.walkOrder)
			continue
		}
		if next == 0 {
			continue
		}
		if _, ok := t.CAS(q.head, pctwm.Value(first), next, q.pubOrder, q.walkOrder); ok {
			return t.Load(pctwm.Loc(next), pctwm.NonAtomic)
		}
	}
	return 0
}

func build(name string, pub, walk pctwm.MemoryOrder) *pctwm.Program {
	p := pctwm.NewProgram(name)
	// Static dummy node so the empty queue is in every thread's initial view.
	dummy := p.Loc("dummy.val", 0)
	p.Loc("dummy.next", 0)
	q := &queue{
		head:     p.Loc("head", pctwm.Value(dummy)),
		tail:     p.Loc("tail", pctwm.Value(dummy)),
		pubOrder: pub, walkOrder: walk,
	}
	p.AddNamedThread("producer1", func(t *pctwm.Thread) { q.enqueue(t, 101) })
	p.AddNamedThread("producer2", func(t *pctwm.Thread) { q.enqueue(t, 102) })
	p.AddNamedThread("consumer", func(t *pctwm.Thread) {
		q.dequeue(t)
		q.dequeue(t)
	})
	return p
}

func main() {
	const rounds = 500
	detect := func(o *pctwm.Outcome) bool { return o.Failed() } // races count

	opts := pctwm.Options{DetectRaces: true, StopOnBug: true}
	for _, v := range []struct {
		label      string
		pub, walk  pctwm.MemoryOrder
		expectBugs bool
	}{
		{"seeded bug (relaxed publication)", pctwm.Relaxed, pctwm.Relaxed, true},
		{"correct (release/acquire)", pctwm.Release, pctwm.Acquire, false},
	} {
		p := build("msqueue-"+v.label, v.pub, v.walk)
		est := pctwm.Estimate(p, 20, 3, opts)
		fmt.Printf("%s:\n", v.label)
		for _, newStrategy := range []func() pctwm.Strategy{
			func() pctwm.Strategy { return pctwm.NewRandomStrategy() },
			func() pctwm.Strategy { return pctwm.NewPCTWM(0, 1, est.KCom) },
		} {
			res := pctwm.RunTrials(p, detect, newStrategy, rounds, 11, opts)
			fmt.Printf("  %-10s data races / safety violations in %3d/%d rounds (%5.1f%%)\n",
				newStrategy().Name(), res.Hits, res.Runs, res.Rate())
		}
	}
	fmt.Println("\nthe relaxed-publication queue races on every execution in which a")
	fmt.Println("thread walks to a node another thread allocated — no strategy-chosen")
	fmt.Println("communication is needed, which is why the paper lists msqueue at d=0.")
}
